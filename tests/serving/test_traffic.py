"""Traffic traces: seeded sampling, attack mixing, burst scaling."""

import numpy as np
import pytest

from repro.serving import TrafficTrace

pytestmark = pytest.mark.serving


def _frames(n=6, size=8):
    rng = np.random.default_rng(0)
    return (rng.uniform(0, 1, size=(n, 3, size, size)).astype(np.float32),
            np.linspace(10.0, 60.0, n))


class TestFromClean:
    def test_seeded_and_deterministic(self):
        images, distances = _frames()
        a = TrafficTrace.from_clean(images, distances, n_ticks=20, seed=3)
        b = TrafficTrace.from_clean(images, distances, n_ticks=20, seed=3)
        assert len(a) == 20
        np.testing.assert_array_equal(a.frames, b.frames)
        np.testing.assert_array_equal(a.truths, b.truths)
        assert a.attack_names == [""] * 20
        assert not any(a.attacked)

    def test_truths_track_frames(self):
        images, distances = _frames()
        trace = TrafficTrace.from_clean(images, distances, n_ticks=40, seed=0)
        for frame, truth in zip(trace.frames, trace.truths):
            index = int(np.argmin(np.abs(distances - truth)))
            np.testing.assert_array_equal(frame, images[index])


class TestMixed:
    def test_attack_fraction_and_names(self):
        images, distances = _frames()
        adversarial = {"FGSM": images + 0.01, "CAP": images + 0.02}
        trace = TrafficTrace.mixed(images, distances, adversarial,
                                   attack_fraction=0.5, n_ticks=200, seed=1)
        attacked = sum(trace.attacked)
        assert 0.35 * 200 <= attacked <= 0.65 * 200
        assert set(trace.attack_names) <= {"", "FGSM", "CAP"}
        # attacked ticks carry the adversarial pixels
        for i, name in enumerate(trace.attack_names):
            if name:
                assert not np.array_equal(trace.frames[i],
                                          images[np.argmin(
                                              np.abs(distances
                                                     - trace.truths[i]))])

    def test_incomplete_adversarial_set_rejected(self):
        images, distances = _frames()
        with pytest.raises(ValueError):
            TrafficTrace.mixed(images, distances,
                               {"FGSM": images[:2] + 0.01},
                               n_ticks=10, seed=0)


class TestBurst:
    def test_burst_compresses_interarrival(self):
        images, distances = _frames()
        trace = TrafficTrace.from_clean(images, distances, n_ticks=10, seed=0)
        burst = trace.burst(4.0)
        assert burst.dt_ms == trace.dt_ms / 4.0
        assert len(burst) == len(trace)
        np.testing.assert_array_equal(burst.frames, trace.frames)
