"""Standard attack configurations used by all benchmarks."""

import pytest

from repro import configs
from repro.attacks import Attack


class TestAttackFactories:
    @pytest.mark.parametrize("name", list(configs.DETECTION_ATTACKS))
    def test_detection_factories_build(self, name):
        attack = configs.make_detection_attack(name)
        assert isinstance(attack, Attack)

    @pytest.mark.parametrize("name", list(configs.REGRESSION_ATTACKS))
    def test_regression_factories_build(self, name):
        attack = configs.make_regression_attack(name)
        assert isinstance(attack, Attack)

    def test_factories_return_fresh_instances(self):
        a = configs.make_detection_attack("Gaussian Noise")
        b = configs.make_detection_attack("Gaussian Noise")
        assert a is not b

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            configs.make_detection_attack("Nope")

    def test_paired_rows_reference_real_attacks(self):
        for row_name, regression, detection in configs.PAIRED_ATTACK_ROWS:
            assert regression in configs.REGRESSION_ATTACKS
            assert detection in configs.DETECTION_ATTACKS

    def test_budget_asymmetry_documented(self):
        """The Fig. 2 shape depends on APGD's small detection budget."""
        apgd = configs.make_detection_attack("Auto-PGD")
        fgsm = configs.make_detection_attack("FGSM")
        assert apgd.eps < fgsm.eps
