"""Cross-module integration: full attack -> defense -> evaluation circuits."""

import numpy as np
import pytest

from repro.configs import make_detection_attack, make_regression_attack
from repro.defenses import MedianBlur
from repro.eval import (evaluate_detection, evaluate_distance,
                        make_balanced_eval_frames)
from repro.models.zoo import (get_detector, get_regressor, get_sign_testset)


@pytest.fixture(scope="module")
def detector():
    return get_detector()


@pytest.fixture(scope="module")
def regressor():
    return get_regressor()


class TestFullDetectionCircuit:
    def test_attack_then_defense_ordering(self, detector):
        """clean >= defended-attacked >= attacked must hold for a defense
        matched to its attack (median blur vs noise)."""
        scenes = get_sign_testset(n_scenes=30, seed=12)
        clean = evaluate_detection(detector, scenes)
        attacked = evaluate_detection(
            detector, scenes, attack=make_detection_attack("Gaussian Noise"))
        defended = evaluate_detection(
            detector, scenes, attack=make_detection_attack("Gaussian Noise"),
            defense=MedianBlur(3))
        assert clean.map50 >= defended.map50 - 3.0
        assert defended.map50 > attacked.map50

    def test_every_standard_attack_runs_end_to_end(self, detector):
        scenes = get_sign_testset(n_scenes=10, seed=13)
        from repro.configs import DETECTION_ATTACKS
        for name in DETECTION_ATTACKS:
            metrics = evaluate_detection(detector, scenes,
                                         attack=make_detection_attack(name))
            assert 0.0 <= metrics.map50 <= 100.0


class TestFullRegressionCircuit:
    def test_every_standard_attack_runs_end_to_end(self, regressor):
        images, distances, boxes = make_balanced_eval_frames(n_per_range=3,
                                                             seed=14)
        from repro.configs import REGRESSION_ATTACKS
        for name in REGRESSION_ATTACKS:
            result = evaluate_distance(regressor, images, distances, boxes,
                                       attack=make_regression_attack(name))
            row = result.range_errors.as_row()
            assert all(np.isfinite(v) for v in row)

    def test_attack_transfer_between_models(self, regressor):
        """Perturbations built vs one regressor transfer imperfectly to a
        differently-seeded one (standard transferability sanity)."""
        from repro.models.zoo import get_regressor as get
        other = get(seed=1, n_frames=300, epochs=8)
        images, distances, boxes = make_balanced_eval_frames(n_per_range=4,
                                                             seed=15)
        attack = make_regression_attack("Auto-PGD")
        own = evaluate_distance(regressor, images, distances, boxes,
                                attack=attack)
        attack2 = make_regression_attack("Auto-PGD")
        transferred = evaluate_distance(other, images, distances, boxes,
                                        attack=attack2,
                                        attack_model=regressor)
        own_close = own.range_errors[(0, 20)]
        transfer_close = transferred.range_errors[(0, 20)]
        # White-box should be at least as strong as transfer.
        assert own_close >= transfer_close - 2.0


class TestSeededReproducibility:
    def test_detection_grid_deterministic(self, detector):
        scenes = get_sign_testset(n_scenes=10, seed=16)
        a = evaluate_detection(detector, scenes,
                               attack=make_detection_attack("FGSM"))
        b = evaluate_detection(detector, scenes,
                               attack=make_detection_attack("FGSM"))
        assert a.map50 == b.map50
        assert a.recall == b.recall

    def test_regression_grid_deterministic(self, regressor):
        images, distances, boxes = make_balanced_eval_frames(n_per_range=3,
                                                             seed=17)
        a = evaluate_distance(regressor, images, distances, boxes,
                              attack=make_regression_attack("Auto-PGD"))
        b = evaluate_distance(regressor, images, distances, boxes,
                              attack=make_regression_attack("Auto-PGD"))
        np.testing.assert_array_equal(a.attacked_predictions,
                                      b.attacked_predictions)
