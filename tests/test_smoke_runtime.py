"""Smoke tier: a miniature experiment grid end-to-end in a few seconds.

Uses an *untrained* detector (no zoo checkpoints, no training) on a tiny
scene batch so the whole attack -> grid -> cache -> instrumentation circuit
runs fast enough for ``pytest -m smoke``.
"""

import numpy as np
import pytest

from repro.attacks import FGSMAttack, attack_fingerprint
from repro.eval import evaluate_detection
from repro.models import TinyDetector
from repro.models.zoo import get_sign_testset
from repro.nn.serialize import state_fingerprint
from repro.runtime import GridRunner
from repro.runtime.cache import ResultCache
from repro.runtime.instrument import Instrumentation

pytestmark = pytest.mark.smoke


@pytest.fixture(scope="module")
def detector():
    model = TinyDetector(rng=np.random.default_rng(0))
    # eval mode, like every zoo model: in train mode the batch-norm running
    # stats would shift during evaluation and (correctly) change the model's
    # weights fingerprint, invalidating the cache between runs.
    model.eval()
    return model


@pytest.fixture(scope="module")
def scenes():
    return get_sign_testset(n_scenes=4, seed=3)


def _grid(detector, scenes, cache, inst):
    model_fp = state_fingerprint(detector)
    grid = GridRunner("smoke", workers=1, cache=cache, instrumentation=inst)
    for eps in (0.0, 0.05):
        def cell(eps=eps):
            if eps == 0.0:  # repro: noqa[R005] -- eps is a parametrized literal passed straight through, not a computed float
                return evaluate_detection(detector, scenes)
            attack = FGSMAttack(eps=eps)
            return evaluate_detection(detector, scenes, attack=attack)
        grid.add(("fgsm", eps), cell,
                 config={"eps": eps, "model": model_fp, "scenes": 4, "v": 1})
    return grid


def test_mini_grid_cold_then_warm(tmp_path, detector, scenes):
    cache = ResultCache(root=str(tmp_path), enabled=True)
    cold_inst = Instrumentation()
    cold = _grid(detector, scenes, cache, cold_inst).run()
    assert not any(record.cached for record in cold_inst.cells)
    assert all(record.forward_passes > 0 for record in cold_inst.cells)

    warm_inst = Instrumentation()
    warm = _grid(detector, scenes, cache, warm_inst).run()
    assert all(record.cached for record in warm_inst.cells)
    for key in cold:
        assert cold[key] == warm[key]

    summary = warm_inst.summary()
    assert summary["totals"]["cache_hits"] == len(cold)


def test_attack_weakens_detection_or_ties(tmp_path, detector, scenes):
    cache = ResultCache(root=str(tmp_path), enabled=False)
    results = _grid(detector, scenes, cache, Instrumentation()).run()
    clean = results[("fgsm", 0.0)]
    attacked = results[("fgsm", 0.05)]
    assert 0.0 <= attacked.map50 <= 100.0
    assert attacked.map50 <= clean.map50 + 1e-6


def test_attack_fingerprint_captures_hyperparameters():
    assert attack_fingerprint(FGSMAttack(eps=0.05)) != \
        attack_fingerprint(FGSMAttack(eps=0.06))
    assert attack_fingerprint(FGSMAttack(eps=0.05)) == \
        attack_fingerprint(FGSMAttack(eps=0.05))
