"""Visualization helpers and the CLI."""

import os

import numpy as np
import pytest

from repro import viz
from repro.cli import EXPERIMENTS, build_parser, main


def rand_image(seed=0, h=8, w=8):
    return np.random.default_rng(seed).random((3, h, w)).astype(np.float32)


class TestPPM:
    def test_roundtrip(self, tmp_path):
        image = rand_image()
        path = str(tmp_path / "img.ppm")
        viz.write_ppm(path, image)
        back = viz.read_ppm(path)
        np.testing.assert_allclose(back, image, atol=1 / 255.0 + 1e-6)

    def test_read_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "bogus.ppm"
        path.write_bytes(b"JUNK")
        with pytest.raises(ValueError):
            viz.read_ppm(str(path))

    def test_to_uint8_clips(self):
        image = np.array([[[-0.5]], [[0.5]], [[1.5]]], dtype=np.float32)
        out = viz.to_uint8(image)
        assert out[0, 0, 0] == 0 and out[0, 0, 2] == 255


class TestDrawing:
    def test_draw_box_outline_only(self):
        image = np.zeros((3, 10, 10), dtype=np.float32)
        out = viz.draw_box(image, (2, 2, 7, 7), color=(1, 0, 0))
        assert out[0, 2, 4] == 1.0      # top edge  # repro: noqa[R005] -- drawn border pixels are assigned exactly 1.0, no arithmetic
        assert out[0, 4, 2] == 1.0      # left edge  # repro: noqa[R005] -- drawn border pixels are assigned exactly 1.0, no arithmetic
        assert out[0, 4, 4] == 0.0      # interior untouched  # repro: noqa[R005] -- interior pixels are untouched zeros from np.zeros
        assert image.sum() == 0.0       # original unmodified  # repro: noqa[R005] -- asserts the all-zero input buffer was not mutated

    def test_draw_box_clips_to_frame(self):
        image = np.zeros((3, 8, 8), dtype=np.float32)
        out = viz.draw_box(image, (-5, -5, 20, 20))
        assert out.shape == image.shape

    def test_hstack_widths_add(self):
        a, b = rand_image(1, 8, 5), rand_image(2, 8, 7)
        out = viz.hstack_images([a, b], gap=2)
        assert out.shape == (3, 8, 5 + 2 + 7)

    def test_hstack_empty_raises(self):
        with pytest.raises(ValueError):
            viz.hstack_images([])

    def test_amplify_difference_midgray_when_equal(self):
        image = rand_image(3)
        out = viz.amplify_difference(image, image)
        np.testing.assert_allclose(out, 0.5)

    def test_attack_panel_written(self, tmp_path):
        clean = rand_image(4, 8, 8)
        adv = np.clip(clean + 0.05, 0, 1)
        path = viz.save_attack_panel(str(tmp_path / "panel.ppm"), clean, adv)
        assert os.path.exists(path)
        panel = viz.read_ppm(path)
        assert panel.shape[2] >= 3 * 8  # three stacked panels

    def test_dataset_examples(self, tmp_path):
        paths = viz.save_dataset_examples(str(tmp_path))
        assert len(paths) == 2
        for path in paths:
            image = viz.read_ppm(path)
            assert image.shape[0] == 3


class TestCLI:
    def test_parser_choices_cover_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig1_writes_outputs(self, tmp_path, capsys):
        assert main(["fig1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig1.txt").exists()
        assert (tmp_path / "fig1_sign_scene.ppm").exists()

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])
