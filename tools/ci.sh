#!/usr/bin/env bash
# Tiered CI entry point:
#
#   tools/ci.sh          # smoke tier, then the fault-robustness tier
#   tools/ci.sh full     # ... then the full test suite
#
# Tier 1 (smoke): fast confidence check — see tools/smoke.sh.
# Tier 2 (faults): the fault-injection robustness suite (pytest -m faults):
#   sensor-fault models, watchdog gating + reacquisition, closed-loop
#   graceful degradation, runtime crash/hang/retry recovery, and the
#   serial/parallel/cached determinism guarantees under active fault plans.
# Tier 3 (full, opt-in): everything.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

echo "== CI tier 1: smoke =="
python -m pytest -m smoke -q

echo "== CI tier 2: faults =="
python -m pytest -m faults -q

if [[ "${1:-}" == "full" ]]; then
    echo "== CI tier 3: full suite =="
    python -m pytest -q
fi
