#!/usr/bin/env bash
# Tiered CI entry point:
#
#   tools/ci.sh          # smoke tier, then the fault-robustness tier
#   tools/ci.sh full     # ... then the full test suite
#   tools/ci.sh analyze  # static lint + analysis tier + sanitized smoke run
#   tools/ci.sh resume   # kill a journaled run mid-grid, resume, diff tables
#   tools/ci.sh serve    # chaos serve drill + serving lint + serving suite
#
# Tier 1 (smoke): fast confidence check — see tools/smoke.sh.
# Tier 2 (faults): the fault-injection robustness suite (pytest -m faults):
#   sensor-fault models, watchdog gating + reacquisition, closed-loop
#   graceful degradation, runtime crash/hang/retry recovery, and the
#   serial/parallel/cached determinism guarantees under active fault plans.
# Tier 3 (full, opt-in): everything.
# Analyze tier (opt-in): the repro.analysis toolchain — AST lint over
#   src/repro, tests and benchmarks (intentionally-broken lint fixtures
#   excluded), the env-var table drift check, the determinism audit with
#   one real Table II cell per defense family, the analysis test suite
#   (lint rules, gradcheck, determinism audit, sanitizers), and the smoke
#   tier re-run under live REPRO_SANITIZE=nan,alias hooks.
# Resume tier (opt-in): crash-consistency end to end — tools/resume_smoke.py
#   kills a journaled table3 run mid-grid under a fault plan, resumes it via
#   `repro.cli run --resume`, and asserts the resumed table is bit-identical
#   to an uninterrupted run.
# Serve tier (opt-in): the fault-tolerant serving layer — the serving lint
#   slice, tools/serve_smoke.py (a chaos drill that crash-loops/hangs
#   replicas and faults the scorer, asserting zero unserved ticks, journaled
#   breaker trips, and bit-identical serial/forked fingerprints), and the
#   serving test suite (pytest -m serving).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

if [[ "${1:-}" == "analyze" ]]; then
    echo "== CI analyze: static lint =="
    python -m repro.cli analyze lint --exclude tests/analysis/fixtures \
        src/repro tests benchmarks

    echo "== CI analyze: env-var table drift =="
    python -m repro.cli analyze envdoc --check README.md

    echo "== CI analyze: determinism audit (grid slice) =="
    python -m repro.cli analyze audit --grid-slice

    echo "== CI analyze: analysis suite =="
    python -m pytest -m analysis -q

    echo "== CI analyze: smoke under sanitizers =="
    REPRO_SANITIZE=nan,alias python -m pytest -m smoke -q
    exit 0
fi

if [[ "${1:-}" == "resume" ]]; then
    echo "== CI resume: kill / resume / diff =="
    python tools/resume_smoke.py
    exit 0
fi

if [[ "${1:-}" == "serve" ]]; then
    echo "== CI serve: serving lint slice =="
    python -m repro.cli analyze lint src/repro/serving

    echo "== CI serve: chaos drill =="
    python tools/serve_smoke.py

    echo "== CI serve: serving suite =="
    python -m pytest -m serving -q
    exit 0
fi

echo "== CI tier 1: smoke =="
python -m pytest -m smoke -q

echo "== CI tier 2: faults =="
python -m pytest -m faults -q

if [[ "${1:-}" == "full" ]]; then
    echo "== CI tier 3: full suite =="
    python -m pytest -q
fi
