#!/usr/bin/env bash
# Tiered CI entry point:
#
#   tools/ci.sh          # smoke tier, then the fault-robustness tier
#   tools/ci.sh full     # ... then the full test suite
#   tools/ci.sh analyze  # static lint + analysis tier + sanitized smoke run
#
# Tier 1 (smoke): fast confidence check — see tools/smoke.sh.
# Tier 2 (faults): the fault-injection robustness suite (pytest -m faults):
#   sensor-fault models, watchdog gating + reacquisition, closed-loop
#   graceful degradation, runtime crash/hang/retry recovery, and the
#   serial/parallel/cached determinism guarantees under active fault plans.
# Tier 3 (full, opt-in): everything.
# Analyze tier (opt-in): the repro.analysis toolchain — AST lint over
#   src/repro, the env-var table drift check, the analysis test suite
#   (lint rules, gradcheck, determinism audit, sanitizers), and the smoke
#   tier re-run under live REPRO_SANITIZE=nan,alias hooks.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

if [[ "${1:-}" == "analyze" ]]; then
    echo "== CI analyze: static lint =="
    python -m repro.cli analyze lint src/repro

    echo "== CI analyze: env-var table drift =="
    python -m repro.cli analyze envdoc --check README.md

    echo "== CI analyze: analysis suite =="
    python -m pytest -m analysis -q

    echo "== CI analyze: smoke under sanitizers =="
    REPRO_SANITIZE=nan,alias python -m pytest -m smoke -q
    exit 0
fi

echo "== CI tier 1: smoke =="
python -m pytest -m smoke -q

echo "== CI tier 2: faults =="
python -m pytest -m faults -q

if [[ "${1:-}" == "full" ]]; then
    echo "== CI tier 3: full suite =="
    python -m pytest -q
fi
