#!/usr/bin/env python
"""End-to-end crash/resume smoke: kill table3 mid-run, resume, diff tables.

Scenario (driven by ``tools/ci.sh resume``):

1. **Reference** — run a scaled-down Table III to completion in a fresh
   cache; keep the rendered table.
2. **Kill** — run the same experiment in a *second* fresh cache under
   ``REPRO_FAULT_PLAN=crash@zoo.table3-det``: the run journals its
   adversarial-set grid, then ``os._exit(13)``s at the first retraining —
   exactly a mid-run ``kill -9``.
3. **Resume** — rerun with ``--resume <run-id>`` (same journal, same
   cache, fault plan cleared) and assert the resumed table is
   byte-identical to the uninterrupted reference, that the journal shows
   the completed cells replaying as ``cached``, and that the second run
   exits cleanly.

The experiment is shrunk (2 attack rows, tiny datasets, 2-epoch
retrainings) by patching the *experiment driver's* namespace — zoo
defaults are baked into function signatures at import time, so the
patches target ``repro.experiments.table3``'s own bindings.
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CRASH_EXIT = 13
KILL_PLAN = "crash@zoo.table3-det"


# ---------------------------------------------------------------------------
# child: one (possibly killed) journaled table3 run
# ---------------------------------------------------------------------------

def _shrink_table3():
    """Scale the Table III driver down to smoke size, in place."""
    import functools

    from repro.experiments import table3
    from repro.models import zoo

    table3.ROW_NAMES = ["Gaussian Noise", "FGSM"]  # cheap attack pair
    table3.TRAIN_SCENES = 10
    table3.TRAIN_FRAMES = 16
    table3.RETRAIN_EPOCHS_DET = 2
    table3.RETRAIN_EPOCHS_REG = 2
    table3.get_detector = functools.partial(zoo.get_detector, n_scenes=16,
                                            epochs=2)
    table3.get_regressor = functools.partial(zoo.get_regressor, n_frames=24,
                                             epochs=2)
    return table3


def child(resume_id, out_path):
    from repro.runtime import journal

    table3 = _shrink_table3()
    log = journal.start_run(resume_id or None)
    print(f"RUN_ID={log.run_id}", flush=True)
    log.append({"event": "run-start", "argv": ["table3"],
                "resumed": bool(resume_id)})
    rows = table3.run(n_per_range=4, n_test_scenes=6)
    table = table3.render(rows)
    with open(out_path, "w") as handle:
        handle.write(table)
    log.append({"event": "run-end", "exit_code": 0})
    return 0


# ---------------------------------------------------------------------------
# parent: orchestrate reference / kill / resume and diff the results
# ---------------------------------------------------------------------------

def _spawn(cache_dir, out_path, resume_id="", fault_plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env.pop("REPRO_FAULT_PLAN", None)
    env.pop("REPRO_RUN_ID", None)
    if fault_plan:
        env["REPRO_FAULT_PLAN"] = fault_plan
    command = [sys.executable, os.path.abspath(__file__), "--child",
               resume_id, out_path]
    return subprocess.run(command, env=env, cwd=REPO, capture_output=True,
                          text=True)


def _run_id(proc):
    match = re.search(r"RUN_ID=(\S+)", proc.stdout)
    if match is None:
        raise SystemExit(f"child printed no run id; stdout:\n{proc.stdout}\n"
                         f"stderr:\n{proc.stderr}")
    return match.group(1)


def main():
    import json
    import tempfile

    with tempfile.TemporaryDirectory(prefix="resume-smoke-") as scratch:
        ref_cache = os.path.join(scratch, "cache-ref")
        run_cache = os.path.join(scratch, "cache-run")
        ref_table = os.path.join(scratch, "table-ref.txt")
        resumed_table = os.path.join(scratch, "table-resumed.txt")

        print("== reference: uninterrupted run ==", flush=True)
        reference = _spawn(ref_cache, ref_table)
        if reference.returncode != 0:
            raise SystemExit("reference run failed:\n" + reference.stderr)

        print(f"== kill: {KILL_PLAN} ==", flush=True)
        killed = _spawn(run_cache, os.path.join(scratch, "unused.txt"),
                        fault_plan=KILL_PLAN)
        if killed.returncode != CRASH_EXIT:
            raise SystemExit(
                f"expected the injected crash to exit {CRASH_EXIT}, got "
                f"{killed.returncode}:\n{killed.stdout}\n{killed.stderr}")
        run_id = _run_id(killed)
        print(f"   killed run {run_id} exited {killed.returncode} as planned")

        print(f"== resume: --resume {run_id} ==", flush=True)
        resumed = _spawn(run_cache, resumed_table, resume_id=run_id)
        if resumed.returncode != 0:
            raise SystemExit("resumed run failed:\n" + resumed.stderr)
        if _run_id(resumed) != run_id:
            raise SystemExit("resume did not reopen the original run id")

        with open(ref_table) as handle:
            expected = handle.read()
        with open(resumed_table) as handle:
            actual = handle.read()
        if expected != actual:
            raise SystemExit("resumed table differs from the uninterrupted "
                             f"run:\n--- expected\n{expected}\n--- actual\n"
                             f"{actual}")
        print("   resumed table is byte-identical to the uninterrupted run")

        journal_path = os.path.join(run_cache, "runs", run_id,
                                    "journal.jsonl")
        events = []
        with open(journal_path) as handle:
            for line in handle:
                try:
                    events.append(json.loads(line))
                except ValueError:
                    pass  # torn tail from the kill is expected
        statuses = [e.get("status") for e in events
                    if e.get("event") == "cell"]
        if "cached" not in statuses:
            raise SystemExit("journal records no replayed (cached) cells — "
                             "the resume recomputed everything:\n"
                             f"{statuses}")
        replayed = statuses.count("cached")
        print(f"   journal: {len(statuses)} cell events, {replayed} replayed "
              "from cache on resume")
    print("resume smoke: OK")
    return 0


if __name__ == "__main__":
    if len(sys.argv) >= 2 and sys.argv[1] == "--child":
        sys.exit(child(sys.argv[2], sys.argv[3]))
    sys.exit(main())
