#!/usr/bin/env python
"""End-to-end serving smoke: chaos drill, full coverage, journaled breakers.

Scenario (driven by ``tools/ci.sh serve``):

1. **Chaos drill** — serve a 60-tick synthetic trace through the
   fault-tolerant stack under an injected fault plan that crash-loops one
   replica, hangs another mid-run, and faults the admission scorer once.
   Assert zero unserved ticks (every tick is answered, coasted, or shed),
   that the injected faults actually fired, and that the crash-looping
   replica tripped its circuit breaker.
2. **Journal** — assert the run journal recorded the serve lifecycle
   (``serve-start`` / ``serve-breaker`` / ``serve-end``).
3. **Determinism** — repeat the identical drill and assert the report
   fingerprints are bit-identical; where ``fork`` exists, repeat it once
   more on real forked replicas and assert the forked report matches the
   in-process one bit-for-bit even though processes genuinely died.

Uses a shrunk regressor (cached after the first run) so a fresh checkout
pays seconds of training, not minutes.
"""

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

CHAOS_PLAN = ("crash@serve.replica.0:attempt=5-12,"
              "hang@serve.replica.1:attempt=8,"
              "raise@serve.scorer:attempt=4")


def _serve(stack, forked):
    from repro.serving import BrokerConfig, ServeConfig, run_serve

    server, trace, scorer = stack
    config = ServeConfig(broker=BrokerConfig(deadline_ms=60.0),
                         forked=forked, wall_timeout=1.0)
    return run_serve(trace, server, config, scorer=scorer)


def main():
    import tempfile

    from repro.eval.harness import make_balanced_eval_frames
    from repro.models import zoo
    from repro.pipeline.perception import PerceptionService
    from repro.runtime import env, journal
    from repro.runtime.parallel import fork_available
    from repro.serving import AdmissionScorer, PerceptionServer, TrafficTrace

    model = zoo.get_regressor(n_frames=24, epochs=2)
    images, distances, _ = make_balanced_eval_frames(n_per_range=4, seed=7)
    trace = TrafficTrace.from_clean(images, distances, n_ticks=60, seed=7)
    scorer = AdmissionScorer()
    scorer.calibrate(images)
    stack = (PerceptionServer(PerceptionService(model)), trace, scorer)

    previous_plan = env.FAULT_PLAN.raw() or ""
    env.FAULT_PLAN.set(CHAOS_PLAN)
    try:
        print(f"== serve smoke: chaos drill ({CHAOS_PLAN}) ==", flush=True)
        with tempfile.TemporaryDirectory(prefix="serve-smoke-") as scratch:
            log = journal.RunJournal("run-0001", scratch)
            journal.set_journal(log)
            try:
                report = _serve(stack, forked=False)
            finally:
                journal.set_journal(None)
            summary = report.summary()
            for key in ("ticks", "answered", "coasted", "shed", "unserved",
                        "availability", "crashes", "hangs", "breaker_trips",
                        "respawns", "scorer_faults"):
                print(f"   {key}: {summary[key]}")
            if summary["unserved"] != 0:
                raise SystemExit(f"{summary['unserved']} tick(s) unserved — "
                                 "the degradation ladder leaked")
            if summary["crashes"] < 1 or summary["hangs"] < 1:
                raise SystemExit("injected replica faults did not fire: "
                                 f"{summary}")
            if summary["scorer_faults"] != 1:
                raise SystemExit("expected exactly one scorer fault, got "
                                 f"{summary['scorer_faults']}")
            if summary["breaker_trips"] < 1:
                raise SystemExit("the crash-looping replica never tripped "
                                 "its breaker")
            events = [e["event"] for e in log.events()]
            for expected in ("serve-start", "serve-breaker", "serve-end"):
                if expected not in events:
                    raise SystemExit(f"journal is missing a {expected} "
                                     f"event: {sorted(set(events))}")
            print("   journal: serve-start / serve-breaker / serve-end ok")

        print("== serve smoke: determinism ==", flush=True)
        fingerprint = report.fingerprint()
        repeat = _serve(stack, forked=False)
        if repeat.fingerprint() != fingerprint:
            raise SystemExit("identical chaos drills produced different "
                             "fingerprints")
        print(f"   repeat run is bit-identical ({fingerprint[:16]}…)")

        if fork_available():
            forked = _serve(stack, forked=True)
            if forked.summary()["respawns"] < 1:
                raise SystemExit("forked drill recorded no respawns — no "
                                 "process actually died")
            if forked.fingerprint() != fingerprint:
                raise SystemExit("forked report diverged from the "
                                 "in-process report")
            print("   forked replicas died, respawned, and matched "
                  "bit-for-bit")
        else:
            print("   fork unavailable: skipped the forked drill")
    finally:
        env.FAULT_PLAN.set(previous_plan)
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
