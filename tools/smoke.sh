#!/usr/bin/env bash
# Fast confidence check: the smoke-marked test subset (< 1 minute).
#
#   tools/smoke.sh            # run the smoke tier
#   tools/smoke.sh -x         # extra pytest args pass through
#
# The smoke tier covers the runtime subsystem (parallel map, result cache,
# grid equivalence, instrumentation), defensive checkpoint loading, the
# in-place optimizers, and one miniature end-to-end experiment grid — no
# model training, no zoo checkpoints.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"
exec python -m pytest -m smoke -q "$@"
