#!/usr/bin/env bash
# Fast confidence check: the smoke-marked test subset (< 1 minute).
#
#   tools/smoke.sh            # run the smoke tier
#   tools/smoke.sh -x         # extra pytest args pass through
#
# The smoke tier covers the runtime subsystem (parallel map, result cache,
# cache GC, grid equivalence, instrumentation), defensive checkpoint
# loading, the in-place optimizers, the fault-injection building blocks
# (sensor fault models, watchdog gating, runtime fault plans), one
# miniature end-to-end experiment grid, and one end-to-end fault-injection
# scenario (frame drops + graceful degradation in the closed loop; uses the
# zoo-cached regressor — trains it once on a cold cache).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"
exec python -m pytest -m smoke -q "$@"
